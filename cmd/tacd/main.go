// Command tacd serves TACA archives over HTTP: snapshot, level, and
// region extraction with a sharded block-level LRU cache in front of the
// pooled decoders, so a fleet of concurrent readers shares decode work
// instead of repeating it. Archives listed with -ingest are opened
// read-write and accept live snapshot appends over POST.
//
// Usage:
//
//	tacd [-listen :8080] [-cache-mb 256] [-shards 16] [-workers 0]
//	     [-ingest] [-ingest-queue 4] [-keyframe 0] [-eb 0]
//	     [-read-header-timeout 10s] [-read-timeout 5m] [-idle-timeout 2m]
//	     [-request-timeout 0] [-scrub-interval 0]
//	     [-replica name=replica.taca ...] [-quarantine-after 0]
//	     [-remote-timeout 30s] [-remote-segment-kb 0] [-remote-cache-mb 32]
//	     archive.taca [name=other.taca ...]
//
// Each positional argument registers one archive, served under its base
// name with the extension stripped (or an explicit name=spec). A spec
// is a local .taca path or an http(s):// URL of a range-capable server
// — another tacd's /v1/a/{name}/raw endpoint, nginx, an S3-style store
// — so an edge tacd can mount archives straight off remote storage,
// fetching only the frames a request touches (internal/remote; the
// -remote-* flags tune its read-ahead cache). -replica attaches a
// healthy copy of an archive (path or URL) to its serving name
// (repeatable; a bare spec binds to the sole archive): reads fail over
// to replicas per read when the primary errors, and a quarantined
// member is automatically re-fetched, digest-verified, and spliced back
// into a file-backed primary — the 502 lifts without a restart.
// Endpoints, also served under /v1/ (see internal/server for the full
// table):
//
//	GET  /archives
//	GET  /a/{name}
//	GET  /a/{name}/snap/{i}
//	GET  /a/{name}/snap/{i}/amr
//	GET  /a/{name}/snap/{i}/level/{l}[?roi=x0:x1,y0:y1,z0:z1]
//	POST /a/{name}/ingest        (with -ingest)
//	POST /a/{name}/repair[?member=i]   (with -replica)
//	GET  /stats
//	GET  /healthz
//
// On SIGINT/SIGTERM tacd drains gracefully: /healthz flips to 503 so
// load balancers stop routing here, in-flight requests and queued
// ingests finish, ingest archives are committed and sealed, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/codec"
	"repro/internal/remote"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tacd: ")
	listen := flag.String("listen", ":8080", "address to listen on")
	cacheMB := flag.Int64("cache-mb", 256, "decoded block-batch cache budget in MiB")
	shards := flag.Int("shards", server.DefaultCacheShards, "cache shard count")
	workers := flag.Int("workers", 0, "per-request batch fan-out (0 = GOMAXPROCS, 1 = serial)")
	ingest := flag.Bool("ingest", false, "open archives read-write and accept POST /a/{name}/ingest")
	ingestQueue := flag.Int("ingest-queue", server.DefaultIngestQueue, "queued snapshots per archive before 429s")
	keyframe := flag.Int("keyframe", 0, "delta-code ingested members with this keyframe interval (0 = intra only)")
	eb := flag.Float64("eb", 0, "error bound for ingested snapshots (0 = inherit from the archive's newest member)")
	drainWait := flag.Duration("drain-wait", 30*time.Second, "graceful shutdown budget for in-flight requests")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "time budget for a client to send its request headers (slowloris guard)")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "time budget for a client to send a full request, ingest bodies included (0 = unbounded)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "how long an idle keep-alive connection is held open")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request extraction deadline; overruns answer 504 (0 = unbounded)")
	scrubInterval := flag.Duration("scrub-interval", 0, "background scrub period: verify every frame and quarantine damaged members (0 = off)")
	quarantineAfter := flag.Int("quarantine-after", 0, "corruption strikes before a member is quarantined (0 = default, negative = never)")
	remoteTimeout := flag.Duration("remote-timeout", remote.DefaultTimeout, "per-range-request deadline for URL-backed archives")
	remoteSegKB := flag.Int("remote-segment-kb", 0, "read-ahead segment size for URL-backed archives, KiB (0 = auto-tune to the archive's frame size)")
	remoteCacheMB := flag.Int64("remote-cache-mb", remote.DefaultCacheBytes>>20, "per-archive read-ahead cache budget for URL-backed archives, MiB (negative = off)")
	var replicaSpecs []string
	flag.Func("replica", "replica for an archive, as name=spec where spec is a path or URL (repeatable; bare spec binds to the sole archive)", func(v string) error {
		replicaSpecs = append(replicaSpecs, v)
		return nil
	})
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tacd [-listen :8080] [-cache-mb 256] [-shards 16] [-workers 0] [-ingest] [-replica name=replica.taca] archive.taca|http://host/v1/a/name/raw [name=other.taca ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *keyframe == 1 || *keyframe < 0 {
		log.Fatalf("-keyframe must be 0 (off) or >= 2 (got %d)", *keyframe)
	}
	// Bind each -replica to its archive's serving name before anything is
	// opened, so typos fail fast instead of silently serving unreplicated.
	replicas := make(map[string][]string)
	for _, rs := range replicaSpecs {
		name, path, ok := strings.Cut(rs, "=")
		if !ok || strings.ContainsAny(name, "/:") {
			// No name part (or the "name" is really a path/URL prefix):
			// a bare spec binds to the sole served archive.
			if flag.NArg() != 1 {
				log.Fatalf("-replica %q: name=spec form is required when serving more than one archive", rs)
			}
			name, path = server.SpecName(flag.Arg(0)), rs
		}
		replicas[name] = append(replicas[name], path)
	}
	if *ingest && len(replicas) > 0 {
		// The repair splice and the append tail would race over the same
		// file region; replicated archives are read-only for now.
		log.Fatal("-replica cannot be combined with -ingest")
	}

	s := server.New(server.Config{
		CacheBytes:      *cacheMB << 20,
		CacheShards:     *shards,
		Workers:         *workers,
		IngestQueue:     *ingestQueue,
		IngestKeyframe:  *keyframe,
		RequestTimeout:  *requestTimeout,
		ScrubInterval:   *scrubInterval,
		QuarantineAfter: *quarantineAfter,
	})
	rcfg := remote.Config{
		Timeout:      *remoteTimeout,
		SegmentBytes: *remoteSegKB << 10,
		CacheBytes:   *remoteCacheMB << 20,
	}
	if *remoteCacheMB < 0 {
		rcfg.CacheBytes = -1
	}
	for _, arg := range flag.Args() {
		name := server.SpecName(arg)
		_, primary := server.SplitSpec(arg)
		reps := replicas[name]
		delete(replicas, name)
		spec := server.ArchiveSpec{
			Primary:  primary,
			Replicas: reps,
			Remote:   rcfg,
		}
		if *ingest {
			spec.Append = true
			spec.Ingest = codec.Config{ErrorBound: *eb, Workers: -1}
		}
		if _, err := s.Add(name, spec); err != nil {
			log.Fatal(err)
		}
		mode := "ro"
		switch {
		case *ingest:
			mode = "rw"
		case len(reps) > 0:
			mode = fmt.Sprintf("ro, %d replicas", len(reps))
		}
		if remote.IsURL(primary) {
			mode += ", remote"
		}
		log.Printf("serving %s as /a/%s (%s)", primary, name, mode)
	}
	for name := range replicas {
		log.Fatalf("-replica %s=...: no archive is served under that name", name)
	}
	log.Printf("listening on %s (%d archives, cache %d MiB / %d shards)",
		*listen, len(s.Names()), *cacheMB, *shards)

	// No WriteTimeout: level and snapshot responses stream and can
	// legitimately take a while on slow links; the read-side timeouts are
	// what keep a hostile client from pinning connections open for free.
	srv := &http.Server{
		Addr:              *listen,
		Handler:           s.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		s.Close()
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("%s: draining (up to %s)", sig, *drainWait)
	}

	// Drain order matters: flip healthz first so balancers stop sending
	// traffic, let the listener finish in-flight requests (including
	// ingests waiting on their commit), then seal the archives.
	s.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v (closing anyway)", err)
	}
	if err := s.Close(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("sealing archives: %v", err)
	}
	log.Print("drained")
}
