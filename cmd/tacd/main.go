// Command tacd serves TACA archives over HTTP: snapshot, level, and
// region extraction with a sharded block-level LRU cache in front of the
// pooled decoders, so a fleet of concurrent readers shares decode work
// instead of repeating it.
//
// Usage:
//
//	tacd [-listen :8080] [-cache-mb 256] [-shards 16] [-workers 0] archive.taca [name=other.taca ...]
//
// Each positional argument registers one archive, served under its base
// name with the extension stripped (or an explicit name=path). Endpoints
// (see internal/server for the full table):
//
//	GET /archives
//	GET /a/{name}
//	GET /a/{name}/snap/{i}
//	GET /a/{name}/snap/{i}/amr
//	GET /a/{name}/snap/{i}/level/{l}[?roi=x0:x1,y0:y1,z0:z1]
//	GET /stats
//	GET /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tacd: ")
	listen := flag.String("listen", ":8080", "address to listen on")
	cacheMB := flag.Int64("cache-mb", 256, "decoded block-batch cache budget in MiB")
	shards := flag.Int("shards", server.DefaultCacheShards, "cache shard count")
	workers := flag.Int("workers", 0, "per-request batch fan-out (0 = GOMAXPROCS, 1 = serial)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tacd [-listen :8080] [-cache-mb 256] [-shards 16] [-workers 0] archive.taca [name=other.taca ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	s := server.New(server.Config{
		CacheBytes:  *cacheMB << 20,
		CacheShards: *shards,
		Workers:     *workers,
	})
	defer s.Close()
	for _, spec := range flag.Args() {
		name, err := s.AddFile(spec)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving %s as /a/%s", spec, name)
	}
	log.Printf("listening on %s (%d archives, cache %d MiB / %d shards)",
		*listen, len(s.Names()), *cacheMB, *shards)
	if err := http.ListenAndServe(*listen, s.Handler()); err != nil {
		log.Fatal(err)
	}
}
