// Command tacc compresses and decompresses .amr snapshots with TAC or one
// of the paper's baselines.
//
// Usage:
//
//	tacc [-cpuprofile cpu.pprof] [-memprofile mem.pprof] <subcommand> ...
//
//	tacc compress   [-codec TAC] [-eb 1e9] [-rel] [-scales 3,1] [-adaptive] in.amr out.tacz
//	tacc decompress in.tacz out.amr
//	tacc info       in.amr
//	tacc verify     [-codec TAC] [-eb 1e9] [-rel] in.amr    (round-trip check)
//	tacc verify     [-repair replica.taca] in.taca          (archive scrub; non-zero exit on damage)
//	tacc repair     -replica replica.taca in.taca           (splice damaged frames back from a replica)
//	tacc archive    [-eb 1e9] [-rel] [-scales 3,1] [-workers -1] [-batch 64] [-append] [-delta] [-keyframe 8] [-sum] [-fsum] out.taca in.amr...
//	tacc ls         [-scrub] in.taca
//	tacc extract    [-member 0] [-level -1] [-roi x0:x1,y0:y1,z0:z1] in.taca out.amr
//
// The global -cpuprofile/-memprofile flags write runtime/pprof profiles
// of whatever subcommand follows, so perf work can profile the real
// pipeline on real files instead of guessing from microbenchmarks:
//
//	tacc -cpuprofile cpu.pprof compress -eb 1e9 in.amr out.tacz
//	go tool pprof cpu.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/amr"
	"repro/internal/archive"
	"repro/internal/baseline"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/remote"
	"repro/internal/render"
	"repro/internal/sz"
)

// openArchive opens a .taca archive named by a local path or an
// http(s):// URL of any range-capable server (a tacd /a/{name}/raw
// endpoint, nginx, an S3-style store). ls, extract and verify work
// identically either way; over a URL only the footer and the frames a
// command touches cross the wire.
func openArchive(spec string) (*archive.Reader, io.Closer, error) {
	if remote.IsURL(spec) {
		rr, err := remote.Open(spec, remote.Config{})
		if err != nil {
			return nil, nil, err
		}
		r, err := archive.Open(rr, rr.Size())
		if err != nil {
			rr.Close()
			return nil, nil, fmt.Errorf("%s: %w", spec, err)
		}
		return r, rr, nil
	}
	fr, err := archive.OpenFile(spec)
	if err != nil {
		return nil, nil, err
	}
	return fr.Reader, fr, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tacc: ")
	global := flag.NewFlagSet("tacc", flag.ExitOnError)
	global.Usage = usageExit
	cpuprofile := global.String("cpuprofile", "", "write a CPU profile of the subcommand to this file")
	memprofile := global.String("memprofile", "", "write a heap profile (taken after the subcommand) to this file")
	// Parse stops at the first non-flag argument — the subcommand.
	if err := global.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	args := global.Args()
	if len(args) < 1 {
		usage()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		// Subcommands exit through log.Fatal on errors, so the profile is
		// only complete for successful runs — the case profiling targets.
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	run(args[0], args[1:])
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
}

func run(cmd string, args []string) {
	switch cmd {
	case "compress":
		compress(args)
	case "decompress":
		decompress(args)
	case "info":
		info(args)
	case "verify":
		verify(args)
	case "repair":
		repairCmd(args)
	case "errmap":
		errmap(args)
	case "archive":
		archiveCmd(args)
	case "ls":
		lsCmd(args)
	case "extract":
		extractCmd(args)
	default:
		usage()
	}
}

// usageExit adapts usage to flag.FlagSet's Usage hook.
func usageExit() { usage() }

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tacc [-cpuprofile cpu.pprof] [-memprofile mem.pprof] <subcommand> ...
  tacc compress   [-codec TAC|1D|zMesh|3D] [-eb 1e9] [-rel] [-scales 3,1] [-adaptive] in.amr out.tacz
  tacc decompress in.tacz out.amr
  tacc info       in.amr
  tacc verify     [-codec ...] [-eb ...] [-rel] in.amr
  tacc verify     [-repair replica.taca] in.taca    (archive scrub; non-zero exit on damage)
  tacc repair     -replica replica.taca in.taca     (splice damaged frames back from a replica)
  tacc errmap     [-codec ...] [-eb ...] [-rel] [-level 0] [-slice -1] in.amr out.png
  tacc archive    [-eb 1e9] [-rel] [-scales 3,1] [-workers -1] [-batch 64] [-append] [-delta] [-keyframe 8] [-sum] [-fsum] out.taca in.amr...
  tacc ls         [-scrub] in.taca
  tacc extract    [-member 0] [-level -1] [-roi x0:x1,y0:y1,z0:z1] in.taca out.amr`)
	os.Exit(2)
}

func pickCodec(name string) codec.Codec {
	switch name {
	case "TAC", "tac":
		return core.TAC{}
	case "1D", "1d":
		return baseline.Naive1D{}
	case "zMesh", "zmesh":
		return baseline.ZMesh{}
	case "3D", "3d":
		return baseline.Uniform3D{}
	default:
		log.Fatalf("unknown codec %q", name)
		return nil
	}
}

func parseCfg(fs *flag.FlagSet, args []string) (codec.Codec, codec.Config, []string) {
	name := fs.String("codec", "TAC", "codec: TAC, 1D, zMesh, 3D")
	eb := fs.Float64("eb", 1e9, "error bound")
	rel := fs.Bool("rel", false, "interpret -eb as value-range-relative")
	scales := fs.String("scales", "", "per-level error-bound multipliers, fine to coarse (e.g. 3,1)")
	adaptive := fs.Bool("adaptive", false, "switch to the 3D baseline when the finest level is dense (Sec. 4.4)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	cfg := codec.Config{ErrorBound: *eb, AdaptiveBaseline: *adaptive}
	if *rel {
		cfg.Mode = sz.Rel
	}
	if *scales != "" {
		cfg.LevelScales = parseScales(*scales)
	}
	return pickCodec(*name), cfg, fs.Args()
}

func compress(args []string) {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	c, cfg, rest := parseCfg(fs, args)
	if len(rest) != 2 {
		usage()
	}
	ds, err := amr.Load(rest[0])
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	blob, err := c.Compress(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dt := time.Since(t0)
	if err := os.WriteFile(rest[1], blob, 0o644); err != nil {
		log.Fatal(err)
	}
	orig := ds.OriginalBytes()
	fmt.Printf("%s: %d -> %d bytes (CR %.1f, %.3f bits/val) in %v (%.1f MB/s)\n",
		c.Name(), orig, len(blob),
		metrics.CompressionRatio(orig, len(blob)),
		metrics.BitRate(len(blob), ds.StoredCells()),
		dt.Round(time.Millisecond), float64(orig)/1e6/dt.Seconds())
}

func decompress(args []string) {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	rest := fs.Args()
	if len(rest) != 2 {
		usage()
	}
	blob, err := os.ReadFile(rest[0])
	if err != nil {
		log.Fatal(err)
	}
	// TAC's decompressor dispatches 3D-baseline payloads itself; try the
	// other codecs for completeness.
	var ds *amr.Dataset
	for _, c := range []codec.Codec{core.TAC{}, baseline.Naive1D{}, baseline.ZMesh{}, baseline.Uniform3D{}} {
		if ds, err = c.Decompress(blob); err == nil {
			break
		}
	}
	if ds == nil {
		log.Fatalf("no codec accepts this payload: %v", err)
	}
	if err := ds.Save(rest[1]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d stored cells, %d levels)\n", rest[1], ds.StoredCells(), len(ds.Levels))
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	ds, err := amr.Load(args[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("name: %s\nfield: %s\nratio: %d\nlevels: %d\nstored cells: %d (%.1f MB)\n",
		ds.Name, ds.Field, ds.Ratio, len(ds.Levels), ds.StoredCells(), float64(ds.OriginalBytes())/1e6)
	for li, l := range ds.Levels {
		fmt.Printf("  level %d: %v cells, unit block %d, density %.4g%%\n",
			li, l.Grid.Dim, l.UnitBlock, l.Density()*100)
	}
	if err := ds.Validate(); err != nil {
		fmt.Printf("VALIDATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("structure: valid")
}

// verify has two modes, dispatched on the file's magic: a .taca archive
// is scrubbed in place (every frame of every member verified — by stored
// digest on checksummed archives, by full decode otherwise) and damage
// exits non-zero; anything else is the original compress/decompress
// round-trip distortion check.
func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	repairFrom := fs.String("repair", "", "for archives: splice damaged frames back from this replica before the scrub")
	c, cfg, rest := parseCfg(fs, args)
	if len(rest) == 1 && isArchive(rest[0]) {
		if *repairFrom != "" {
			repairArchive(rest[0], *repairFrom)
		}
		verifyArchive(rest[0])
		return
	}
	if *repairFrom != "" {
		log.Fatal("-repair only applies to .taca archives")
	}
	if len(rest) != 1 {
		usage()
	}
	ds, err := amr.Load(rest[0])
	if err != nil {
		log.Fatal(err)
	}
	blob, err := c.Compress(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	recon, err := c.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := metrics.DatasetDistortion(ds, recon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: CR %.1f, PSNR %.2f dB, max err %.4g\n",
		c.Name(), metrics.CompressionRatio(ds.OriginalBytes(), len(blob)), dist.PSNR(), dist.MaxErr)
}

// isArchive sniffs the TACA magic so verify dispatches on content, not
// file naming. URLs always dispatch as archives — that is the only mode
// that can read one.
func isArchive(path string) bool {
	if remote.IsURL(path) {
		return true
	}
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == "TACA"
}

// verifyArchive scrubs every frame of every member and exits non-zero if
// any damage is found, so cron jobs and CI can gate on the exit status.
func verifyArchive(path string) {
	r, closer, err := openArchive(path)
	if err != nil {
		log.Fatal(err)
	}
	defer closer.Close()
	frames := 0
	for _, m := range r.Members() {
		for li := range m.Levels {
			frames += len(m.Levels[li].Batches)
		}
	}
	mode := "decode-verified (no stored digests; archive predates -sum)"
	if r.Checksummed() {
		mode = "digest-verified"
	}
	t0 := time.Now()
	issues := r.Scrub()
	dt := time.Since(t0)
	if len(issues) > 0 {
		for _, is := range issues {
			fmt.Fprintf(os.Stderr, "tacc: DAMAGED %s\n", is)
		}
		log.Fatalf("%s: %d of %d frames damaged (%d members, %s)",
			path, len(issues), frames, len(r.Members()), mode)
	}
	fmt.Printf("%s: %d members, %d frames %s in %v — clean\n",
		path, len(r.Members()), frames, mode, dt.Round(time.Millisecond))
}

// repairCmd heals a damaged archive offline: every frame that fails its
// scrub is re-fetched from the replica, digest-verified, and rewritten
// in place at the same offset. The exit status follows the repair — a
// replica damaged at the same frames, or fetch errors, exit non-zero
// with the archive's clean frames untouched.
func repairCmd(args []string) {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	replica := fs.String("replica", "", "healthy copy of the archive to re-fetch damaged frames from")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	rest := fs.Args()
	if len(rest) != 1 || *replica == "" {
		usage()
	}
	repairArchive(rest[0], *replica)
}

// repairArchive is the shared splice step of `tacc repair` and
// `tacc verify -repair`. The replica may be a URL: damaged frames are
// then re-fetched over HTTP ranges, so a fleet node can heal from a
// central healthy copy without mirroring it. The archive being repaired
// must be a local file (the splice rewrites it in place).
func repairArchive(path, replicaPath string) {
	if remote.IsURL(path) {
		log.Fatalf("%s: cannot repair a remote archive in place (repair the file on its host)", path)
	}
	var src io.ReaderAt
	if remote.IsURL(replicaPath) {
		rr, err := remote.Open(replicaPath, remote.Config{})
		if err != nil {
			log.Fatal(err)
		}
		defer rr.Close()
		src = rr
	} else {
		f, err := os.Open(replicaPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	t0 := time.Now()
	rs, err := archive.Repair(path, src)
	if err != nil {
		log.Fatalf("repairing %s from %s: %v", path, replicaPath, err)
	}
	if rs.FramesRepaired == 0 {
		fmt.Printf("%s: %d frames scanned, nothing to repair\n", path, rs.FramesScanned)
		return
	}
	fmt.Printf("%s: repaired %d of %d frames (%d bytes respliced, members %v) from %s in %v\n",
		path, rs.FramesRepaired, rs.FramesScanned, rs.BytesRespliced, rs.Members,
		replicaPath, time.Since(t0).Round(time.Millisecond))
}

// archiveCmd compresses a sequence of .amr snapshots into one seekable
// .taca archive, streaming each member out as it is compressed. With
// -append the archive is grown in place: new members land after the
// existing committed generation (a torn tail from an earlier crash is
// truncated first), and the commit ordering keeps the file openable at
// every instant. With -delta the writer runs in campaign mode: each
// member delta-codes against the previous member of its field where that
// pays, with a keyframe every -keyframe members bounding the reference
// chain (appends continue the chain of the committed tail).
func archiveCmd(args []string) {
	fs := flag.NewFlagSet("archive", flag.ExitOnError)
	eb := fs.Float64("eb", 1e9, "error bound")
	rel := fs.Bool("rel", false, "interpret -eb as value-range-relative")
	scales := fs.String("scales", "", "per-level error-bound multipliers, fine to coarse")
	workers := fs.Int("workers", -1, "compression workers per level (-1 = all CPUs)")
	batch := fs.Int("batch", archive.DefaultBatchBlocks, "unit blocks per seekable frame")
	appendTo := fs.Bool("append", false, "append to an existing archive instead of creating it")
	delta := fs.Bool("delta", false, "campaign mode: delta-code members against their predecessors")
	keyframe := fs.Int("keyframe", 8, "with -delta, keyframe interval bounding reference chains")
	sum := fs.Bool("sum", false, "store per-frame digests so reads and 'tacc verify' detect corruption")
	fsum := fs.Bool("fsum", false, "additionally seal the footer with a self-digest (format v4, implies -sum)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *delta && *keyframe < 2 {
		log.Fatalf("-keyframe must be >= 2 (got %d)", *keyframe)
	}
	rest := fs.Args()
	if len(rest) < 2 {
		usage()
	}
	cfg := codec.Config{ErrorBound: *eb, Workers: *workers}
	if *rel {
		cfg.Mode = sz.Rel
	}
	if *scales != "" {
		cfg.LevelScales = parseScales(*scales)
	}
	var (
		f    *os.File
		w    *archive.Writer
		err  error
		base int
	)
	if *appendTo {
		w, f, err = archive.OpenAppendFile(rest[0])
		if err != nil {
			log.Fatal(err)
		}
		base = len(w.Members())
	} else {
		f, err = os.Create(rest[0])
		if err != nil {
			log.Fatal(err)
		}
		w, err = archive.NewWriter(f)
		if err != nil {
			f.Close()
			log.Fatal(err)
		}
	}
	defer f.Close()
	w.BatchBlocks = *batch
	if *delta {
		w.Keyframe = *keyframe
	}
	if *sum {
		// Appends to an already-checksummed archive inherit the flag;
		// -sum on a legacy archive upgrades it (existing frames get
		// digests backfilled at commit). It never downgrades.
		w.Checksums = true
	}
	if *fsum {
		w.FooterSum = true
	}
	t0 := time.Now()
	var orig int64
	startOff := w.Stats().BytesWritten
	for _, path := range rest[1:] {
		ds, err := amr.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.AddDataset(ds, cfg); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		orig += int64(ds.OriginalBytes())
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	dt := time.Since(t0)
	st := w.Stats()
	verb := ""
	if *appendTo {
		// Generation() counts commits; the file's newest trailer is
		// stamped one less.
		verb = fmt.Sprintf(" (+%d appended, generation %d)", st.Members-base, w.Generation()-1)
	}
	fmt.Printf("%s: %d members%s, %d -> %d bytes (CR %.1f) in %v (%.1f MB/s)\n",
		rest[0], st.Members, verb, orig, st.BytesWritten-startOff,
		float64(orig)/float64(st.BytesWritten-startOff),
		dt.Round(time.Millisecond), float64(orig)/1e6/dt.Seconds())
}

// lsCmd lists the members of an archive from its footer index alone:
// per-member generation, coding mode (intra, or delta with its reference
// member), and compression ratio come straight from the footer, no frame
// is read. With -scrub every member's frames are verified too, a health
// column (ok / DAMAGED) is appended, and any damage exits non-zero — the
// quick way to see which member a `tacc repair` would target.
func lsCmd(args []string) {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	scrub := fs.Bool("scrub", false, "verify every member's frames and append a health column")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	rest := fs.Args()
	if len(rest) != 1 {
		usage()
	}
	r, closer, err := openArchive(rest[0])
	if err != nil {
		log.Fatal(err)
	}
	defer closer.Close()
	health := ""
	if *scrub {
		health = "  health"
	}
	fmt.Printf("%-4s %-16s %-20s %6s %4s %-10s %12s %12s %8s %10s%s\n",
		"#", "name", "field", "levels", "gen", "mode", "cells", "bytes", "CR", "eb", health)
	damaged := 0
	for i, m := range r.Members() {
		mode := "intra"
		if m.IsDelta() {
			mode = fmt.Sprintf("delta->%d", m.Ref)
		}
		if *scrub {
			health = "  ok"
			if issues := r.ScrubMember(i); len(issues) > 0 {
				health = fmt.Sprintf("  DAMAGED (%d frames)", len(issues))
				damaged++
			}
		}
		fmt.Printf("%-4d %-16s %-20s %6d %4d %-10s %12d %12d %8.1f %10.3g%s\n",
			i, m.Name, m.Field, len(m.Levels), m.Gen, mode, m.StoredCells(), m.CompressedBytes(),
			float64(m.OriginalBytes())/float64(m.CompressedBytes()), m.ErrorBound, health)
	}
	if damaged > 0 {
		log.Fatalf("%s: %d of %d members damaged", rest[0], damaged, len(r.Members()))
	}
}

// extractCmd pulls a member, a level, or a spatial region out of an
// archive, reading only the covered frames.
func extractCmd(args []string) {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	member := fs.String("member", "0", "member index, or name[/field]")
	level := fs.Int("level", -1, "extract a single level (-1 = all)")
	roi := fs.String("roi", "", "region of interest x0:x1,y0:y1,z0:z1 in finest cells")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	rest := fs.Args()
	if len(rest) != 2 {
		usage()
	}
	r, closer, err := openArchive(rest[0])
	if err != nil {
		log.Fatal(err)
	}
	defer closer.Close()
	mi := resolveMember(r, *member)
	var ds *amr.Dataset
	switch {
	case *roi != "" && *level >= 0:
		log.Fatal("-level and -roi are mutually exclusive")
	case *roi != "":
		ds, err = r.ExtractRegion(mi, parseROI(*roi))
	case *level >= 0:
		var l *amr.Level
		l, err = r.ExtractLevel(mi, *level)
		if err == nil {
			m := r.Members()[mi]
			ds = &amr.Dataset{Name: m.Name, Field: m.Field, Ratio: m.Ratio, Levels: []*amr.Level{l}}
		}
	default:
		ds, err = r.Extract(mi)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Save(rest[1]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d stored cells, %d levels)\n", rest[1], ds.StoredCells(), len(ds.Levels))
}

// resolveMember accepts an index or a name[/field] selector.
func resolveMember(r *archive.Reader, sel string) int {
	if i, err := strconv.Atoi(sel); err == nil {
		return i
	}
	name, field, _ := strings.Cut(sel, "/")
	i := r.Find(name, field)
	if i < 0 {
		log.Fatalf("archive has no member %q", sel)
	}
	return i
}

// parseROI parses "x0:x1,y0:y1,z0:z1" via the shared grid parser.
func parseROI(s string) grid.Region {
	r, err := grid.ParseRegion(s)
	if err != nil {
		log.Fatalf("bad -roi: %v", err)
	}
	return r
}

// parseScales parses a comma-separated multiplier list.
func parseScales(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			log.Fatalf("bad -scales entry %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out
}

// errmap compresses, decompresses, and renders a Fig. 7/12-style error-map
// slice of one level (brighter = larger error).
func errmap(args []string) {
	fs := flag.NewFlagSet("errmap", flag.ExitOnError)
	level := fs.Int("level", 0, "AMR level to render (0 = finest)")
	slice := fs.Int("slice", -1, "z slice index (-1 = middle)")
	c, cfg, rest := parseCfg(fs, args)
	if len(rest) != 2 {
		usage()
	}
	ds, err := amr.Load(rest[0])
	if err != nil {
		log.Fatal(err)
	}
	if *level < 0 || *level >= len(ds.Levels) {
		log.Fatalf("dataset has no level %d", *level)
	}
	blob, err := c.Compress(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	recon, err := c.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	l, rl := ds.Levels[*level], recon.Levels[*level]
	k := *slice
	if k < 0 {
		k = l.Grid.Dim.Z / 2
	}
	if err := render.WriteErrorMap(rest[1], l.Grid, rl.Grid, k); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: wrote error map of level %d slice %d to %s (CR %.1f)\n",
		c.Name(), *level, k, rest[1],
		metrics.CompressionRatio(ds.OriginalBytes(), len(blob)))
}
