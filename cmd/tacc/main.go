// Command tacc compresses and decompresses .amr snapshots with TAC or one
// of the paper's baselines.
//
// Usage:
//
//	tacc compress   [-codec TAC] [-eb 1e9] [-rel] [-scales 3,1] [-adaptive] in.amr out.tacz
//	tacc decompress in.tacz out.amr
//	tacc info       in.amr
//	tacc verify     [-codec TAC] [-eb 1e9] [-rel] in.amr    (round-trip check)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/amr"
	"repro/internal/baseline"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/render"
	"repro/internal/sz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tacc: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "compress":
		compress(os.Args[2:])
	case "decompress":
		decompress(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "errmap":
		errmap(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tacc compress   [-codec TAC|1D|zMesh|3D] [-eb 1e9] [-rel] [-scales 3,1] [-adaptive] in.amr out.tacz
  tacc decompress in.tacz out.amr
  tacc info       in.amr
  tacc verify     [-codec ...] [-eb ...] [-rel] in.amr
  tacc errmap     [-codec ...] [-eb ...] [-rel] [-level 0] [-slice -1] in.amr out.png`)
	os.Exit(2)
}

func pickCodec(name string) codec.Codec {
	switch name {
	case "TAC", "tac":
		return core.TAC{}
	case "1D", "1d":
		return baseline.Naive1D{}
	case "zMesh", "zmesh":
		return baseline.ZMesh{}
	case "3D", "3d":
		return baseline.Uniform3D{}
	default:
		log.Fatalf("unknown codec %q", name)
		return nil
	}
}

func parseCfg(fs *flag.FlagSet, args []string) (codec.Codec, codec.Config, []string) {
	name := fs.String("codec", "TAC", "codec: TAC, 1D, zMesh, 3D")
	eb := fs.Float64("eb", 1e9, "error bound")
	rel := fs.Bool("rel", false, "interpret -eb as value-range-relative")
	scales := fs.String("scales", "", "per-level error-bound multipliers, fine to coarse (e.g. 3,1)")
	adaptive := fs.Bool("adaptive", false, "switch to the 3D baseline when the finest level is dense (Sec. 4.4)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	cfg := codec.Config{ErrorBound: *eb, AdaptiveBaseline: *adaptive}
	if *rel {
		cfg.Mode = sz.Rel
	}
	if *scales != "" {
		for _, part := range strings.Split(*scales, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				log.Fatalf("bad -scales entry %q: %v", part, err)
			}
			cfg.LevelScales = append(cfg.LevelScales, v)
		}
	}
	return pickCodec(*name), cfg, fs.Args()
}

func compress(args []string) {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	c, cfg, rest := parseCfg(fs, args)
	if len(rest) != 2 {
		usage()
	}
	ds, err := amr.Load(rest[0])
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	blob, err := c.Compress(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dt := time.Since(t0)
	if err := os.WriteFile(rest[1], blob, 0o644); err != nil {
		log.Fatal(err)
	}
	orig := ds.OriginalBytes()
	fmt.Printf("%s: %d -> %d bytes (CR %.1f, %.3f bits/val) in %v (%.1f MB/s)\n",
		c.Name(), orig, len(blob),
		metrics.CompressionRatio(orig, len(blob)),
		metrics.BitRate(len(blob), ds.StoredCells()),
		dt.Round(time.Millisecond), float64(orig)/1e6/dt.Seconds())
}

func decompress(args []string) {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	rest := fs.Args()
	if len(rest) != 2 {
		usage()
	}
	blob, err := os.ReadFile(rest[0])
	if err != nil {
		log.Fatal(err)
	}
	// TAC's decompressor dispatches 3D-baseline payloads itself; try the
	// other codecs for completeness.
	var ds *amr.Dataset
	for _, c := range []codec.Codec{core.TAC{}, baseline.Naive1D{}, baseline.ZMesh{}, baseline.Uniform3D{}} {
		if ds, err = c.Decompress(blob); err == nil {
			break
		}
	}
	if ds == nil {
		log.Fatalf("no codec accepts this payload: %v", err)
	}
	if err := ds.Save(rest[1]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d stored cells, %d levels)\n", rest[1], ds.StoredCells(), len(ds.Levels))
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	ds, err := amr.Load(args[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("name: %s\nfield: %s\nratio: %d\nlevels: %d\nstored cells: %d (%.1f MB)\n",
		ds.Name, ds.Field, ds.Ratio, len(ds.Levels), ds.StoredCells(), float64(ds.OriginalBytes())/1e6)
	for li, l := range ds.Levels {
		fmt.Printf("  level %d: %v cells, unit block %d, density %.4g%%\n",
			li, l.Grid.Dim, l.UnitBlock, l.Density()*100)
	}
	if err := ds.Validate(); err != nil {
		fmt.Printf("VALIDATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("structure: valid")
}

func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	c, cfg, rest := parseCfg(fs, args)
	if len(rest) != 1 {
		usage()
	}
	ds, err := amr.Load(rest[0])
	if err != nil {
		log.Fatal(err)
	}
	blob, err := c.Compress(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	recon, err := c.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := metrics.DatasetDistortion(ds, recon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: CR %.1f, PSNR %.2f dB, max err %.4g\n",
		c.Name(), metrics.CompressionRatio(ds.OriginalBytes(), len(blob)), dist.PSNR(), dist.MaxErr)
}

// errmap compresses, decompresses, and renders a Fig. 7/12-style error-map
// slice of one level (brighter = larger error).
func errmap(args []string) {
	fs := flag.NewFlagSet("errmap", flag.ExitOnError)
	level := fs.Int("level", 0, "AMR level to render (0 = finest)")
	slice := fs.Int("slice", -1, "z slice index (-1 = middle)")
	c, cfg, rest := parseCfg(fs, args)
	if len(rest) != 2 {
		usage()
	}
	ds, err := amr.Load(rest[0])
	if err != nil {
		log.Fatal(err)
	}
	if *level < 0 || *level >= len(ds.Levels) {
		log.Fatalf("dataset has no level %d", *level)
	}
	blob, err := c.Compress(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	recon, err := c.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	l, rl := ds.Levels[*level], recon.Levels[*level]
	k := *slice
	if k < 0 {
		k = l.Grid.Dim.Z / 2
	}
	if err := render.WriteErrorMap(rest[1], l.Grid, rl.Grid, k); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: wrote error map of level %d slice %d to %s (CR %.1f)\n",
		c.Name(), *level, k, rest[1],
		metrics.CompressionRatio(ds.OriginalBytes(), len(blob)))
}
