// Command benchall regenerates every table and figure of the TAC paper's
// evaluation section on the synthetic datasets and prints them in paper
// order. See EXPERIMENTS.md for the paper-vs-measured record.
//
// With -json, it also writes a machine-readable record of the run —
// per-exhibit wall times plus the seekable-archive throughput numbers —
// for the performance trajectory across PRs (e.g. BENCH_archive.json).
//
// Usage:
//
//	benchall [-scale 4] [-only fig14] [-json BENCH_archive.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

// report is the -json output schema.
type report struct {
	Scale      int                              `json:"scale"`
	GoMaxProcs int                              `json:"gomaxprocs"`
	Exhibits   []exhibitTiming                  `json:"exhibits"`
	Archive    experiments.ArchiveBenchResult   `json:"archive"`
	Engine     experiments.EngineBenchResult    `json:"engine"`
	Entropy    experiments.EntropyBenchResult   `json:"entropy"`
	Predict    experiments.PredictBenchResult   `json:"predict"`
	Serve      experiments.ServeBenchResult     `json:"serve"`
	Ingest     experiments.IngestBenchResult    `json:"ingest"`
	Temporal   experiments.TemporalBenchResult  `json:"temporal"`
	Integrity  experiments.IntegrityBenchResult `json:"integrity"`
	Remote     experiments.RemoteBenchResult    `json:"remote"`
	TotalSecs  float64                          `json:"total_seconds"`
}

type exhibitTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchall: ")
	scale := flag.Int("scale", experiments.DefaultScale, "resolution divisor vs the paper (power of two, 1-16)")
	only := flag.String("only", "", "run a single exhibit (e.g. table2, fig15)")
	list := flag.Bool("list", false, "list exhibit IDs and exit")
	jsonPath := flag.String("json", "", "write machine-readable results (timings + archive throughput) to this path")
	flag.Parse()

	if *list {
		for _, ex := range experiments.Exhibits() {
			fmt.Printf("%-8s %s\n", ex.ID, ex.Desc)
		}
		return
	}
	env := experiments.NewEnv(*scale)
	start := time.Now()
	rep := report{Scale: env.Scale, GoMaxProcs: runtime.GOMAXPROCS(0)}
	timed := func(id string, d time.Duration) {
		rep.Exhibits = append(rep.Exhibits, exhibitTiming{ID: id, Seconds: d.Seconds()})
	}
	if *only != "" {
		t0 := time.Now()
		if err := experiments.RunByID(os.Stdout, env, *only); err != nil {
			log.Fatal(err)
		}
		timed(*only, time.Since(t0))
	} else if err := experiments.RunAllTimed(os.Stdout, env, timed); err != nil {
		log.Fatal(err)
	}

	if *jsonPath != "" {
		arch, err := experiments.ArchiveBench(env)
		if err != nil {
			log.Fatalf("archive bench: %v", err)
		}
		rep.Archive = arch
		eng, err := experiments.EngineBench(env)
		if err != nil {
			log.Fatalf("engine bench: %v", err)
		}
		rep.Engine = eng
		ent, err := experiments.EntropyBench(env)
		if err != nil {
			log.Fatalf("entropy bench: %v", err)
		}
		rep.Entropy = ent
		pred, err := experiments.PredictBench(env)
		if err != nil {
			log.Fatalf("predict bench: %v", err)
		}
		rep.Predict = pred
		srv, err := experiments.ServeBench(env)
		if err != nil {
			log.Fatalf("serve bench: %v", err)
		}
		rep.Serve = srv
		ing, err := experiments.IngestBench(env)
		if err != nil {
			log.Fatalf("ingest bench: %v", err)
		}
		rep.Ingest = ing
		tmp, err := experiments.TemporalBench(env)
		if err != nil {
			log.Fatalf("temporal bench: %v", err)
		}
		rep.Temporal = tmp
		integ, err := experiments.IntegrityBench(env)
		if err != nil {
			log.Fatalf("integrity bench: %v", err)
		}
		rep.Integrity = integ
		rem, err := experiments.RemoteBench(env)
		if err != nil {
			log.Fatalf("remote bench: %v", err)
		}
		rep.Remote = rem
		rep.TotalSecs = time.Since(start).Seconds()
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[wrote %s: archive write %.1f MB/s, member read %.1f MB/s, level read %.1f%%, ROI read %.1f%% of archive]\n",
			*jsonPath, arch.WriteMBps, arch.ExtractMemberMBps,
			100*arch.ExtractLevelFraction, 100*arch.ExtractRegionFraction)
		fmt.Printf("[engine: compress %.0f allocs/op %.1f MB/s; decompress %.1f → %.1f MB/s (%.2fx with Workers=-1)]\n",
			eng.CompressAllocsPerOp, eng.CompressMBps,
			eng.DecompressSerialMBps, eng.DecompressParallelMBps, eng.DecompressSpeedup)
		fmt.Printf("[entropy: %d codes (%d distinct), huffman encode %.1f MB/s, decode %.1f MB/s]\n",
			ent.Symbols, ent.DistinctSymbols, ent.EncodeMBps, ent.DecodeMBps)
		fmt.Printf("[predict: %d cells, lorenzo encode %.1f MB/s, decode %.1f MB/s]\n",
			pred.Cells, pred.EncodeMBps, pred.DecodeMBps)
		fmt.Printf("[serve: %d reqs x%d, %.0f req/s, %.1f MB/s served, cache hit ratio %.2f (%d decodes)]\n",
			srv.Requests, srv.Concurrency, srv.RequestsPerSec, srv.ServedMBps, srv.CacheHitRatio, srv.Decodes)
		fmt.Printf("[ingest: %d snapshots, %.1f MB/s ingested (%.1f snap/s) with %d readers pulling %.1f MB/s, gen %d, reopened %d members]\n",
			ing.Snapshots, ing.IngestMBps, ing.SnapshotsPerS, ing.Readers, ing.ReadMBps, ing.Generation, ing.ReopenedMember)
		fmt.Printf("[temporal: %d snapshots K=%d, CR %.1f intra -> %.1f delta (%.2fx), write %.1f/%.1f MB/s, chain-%d extract %.1f vs %.1f MB/s, max err %.3g]\n",
			tmp.Snapshots, tmp.Keyframe, tmp.IntraRatio, tmp.DeltaRatio, tmp.Improvement,
			tmp.IntraWriteMBps, tmp.DeltaWriteMBps, tmp.ChainDepth,
			tmp.DeltaExtractMBps, tmp.IntraExtractMBps, tmp.MaxErr)
		fmt.Printf("[integrity: %d frames +%d footer bytes, read %.1f -> %.1f MB/s (%.2fx), scrub %.1f MB/s, flips %d/%d detected]\n",
			integ.Frames, integ.FooterGrowth, integ.PlainReadMBps, integ.SummedReadMBps,
			integ.VerifyOverhead, integ.ScrubMBps, integ.FlipsDetected, integ.FlipsInjected)
		match := "MISMATCH"
		if integ.RepairedReadsMatch {
			match = "byte-identical"
		}
		fmt.Printf("[repair: %d frames respliced at %.1f MB/s (%s), failover read overhead %.2fx]\n",
			integ.RepairFrames, integ.RepairMBps, match, integ.FailoverOverhead)
		rmatch := "MISMATCH"
		if rem.RemoteLocalMatch {
			rmatch = "byte-identical"
		}
		fmt.Printf("[remote: %d KiB segments, level fetch %.1f%%, ROI fetch %.1f%% of archive, extract cold %.1f -> warm %.1f MB/s, hit ratio %.2f (%s)]\n",
			rem.SegmentBytes>>10, 100*rem.LevelFetchFraction, 100*rem.RegionFetchFraction,
			rem.ColdExtractMBps, rem.WarmExtractMBps, rem.HitRatio, rmatch)
	}
	fmt.Printf("\n[benchall completed in %v at scale 1/%d]\n", time.Since(start).Round(time.Second), *scale)
}
