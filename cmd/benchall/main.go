// Command benchall regenerates every table and figure of the TAC paper's
// evaluation section on the synthetic datasets and prints them in paper
// order. See EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	benchall [-scale 4] [-only fig14]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchall: ")
	scale := flag.Int("scale", experiments.DefaultScale, "resolution divisor vs the paper (power of two, 1-16)")
	only := flag.String("only", "", "run a single exhibit (e.g. table2, fig15)")
	list := flag.Bool("list", false, "list exhibit IDs and exit")
	flag.Parse()

	if *list {
		for _, ex := range experiments.Exhibits() {
			fmt.Printf("%-8s %s\n", ex.ID, ex.Desc)
		}
		return
	}
	env := experiments.NewEnv(*scale)
	start := time.Now()
	var err error
	if *only != "" {
		err = experiments.RunByID(os.Stdout, env, *only)
	} else {
		err = experiments.RunAll(os.Stdout, env)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[benchall completed in %v at scale 1/%d]\n", time.Since(start).Round(time.Second), *scale)
}
